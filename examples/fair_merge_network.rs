//! The fair-merge pipeline of Section 4.10 (Figure 7): tagging
//! implementation, mechanical variable elimination (Section 7), and
//! fairness of operational runs.
//!
//! Run with: `cargo run --example fair_merge_network`

use eqp::core::properties::is_interleaving;
use eqp::core::smooth::is_smooth;
use eqp::kahn::{Oracle, RandomSched, RunOptions};
use eqp::processes::fair_merge as fm;
use eqp::trace::{ChanSet, Value};

fn main() {
    println!("== Fair merge via tagging (Section 4.10) ==\n");

    println!("full system (A, B tag; D merges tags; C untags):");
    for d in fm::full_system().descriptions() {
        print!("{d}");
    }

    println!("\nafter eliminating the tagged intermediaries c', d' (Theorems 5/6):");
    for d in fm::eliminated_system().descriptions() {
        print!("{d}");
    }

    // Operational runs: completeness, order preservation, fairness.
    let cs = [2i64, 4, 6, 8, 10];
    let ds = [1i64, 3, 5];
    println!("\nmerging c = {cs:?} with d = {ds:?}:");
    for seed in 0..5u64 {
        let mut net = fm::network(&cs, &ds, Oracle::fair(seed, 2));
        let run = net.run(
            &mut RandomSched::new(seed),
            RunOptions {
                max_steps: 500,
                seed,
                ..RunOptions::default()
            },
        );
        assert!(run.quiescent);
        let es: Vec<i64> = run
            .trace
            .seq_on(fm::E)
            .take(16)
            .iter()
            .map(|v| v.as_int().unwrap())
            .collect();
        println!("  seed {seed}: e = {es:?}");

        let evals: Vec<Value> = es.iter().map(|&n| Value::Int(n)).collect();
        let cvals: Vec<Value> = cs.iter().map(|&n| Value::Int(n)).collect();
        let dvals: Vec<Value> = ds.iter().map(|&n| Value::Int(n)).collect();
        assert!(is_interleaving(&evals, &cvals, &dvals, true));

        // the quiescent trace (sans tagged intermediaries) is smooth:
        let t = run
            .trace
            .project(&ChanSet::from_chans([fm::C, fm::D, fm::E, fm::B]));
        assert!(is_smooth(&fm::eliminated_system().flatten(), &t));
    }
    println!("\nEvery run is a complete, order-preserving, smooth merge.");
}
