//! Crash and recover: the checkpointed supervision runtime end to end.
//!
//! A zoo network is killed mid-run by a crash fuse, the supervisor
//! restores it from the latest checkpoint (or replays its observation
//! journal from genesis), and the recovered quiescent run still certifies
//! as a smooth **solution** of the original description — recovery is
//! invisible to Theorem 2. A chaos storm then samples random fault
//! schedules against the same network and shrinks every conviction to a
//! minimal reproducer.
//!
//! Run with: `cargo run --example supervised_network`

use eqp::kahn::chaos::{self, ChaosOptions};
use eqp::kahn::conformance::{check_report, ConformanceOptions};
use eqp::kahn::{RoundRobin, RunOptions, SupervisorOptions};
use eqp::processes::zoo::conformance_zoo;

fn main() {
    let zoo = conformance_zoo();
    let entry = zoo
        .iter()
        .find(|e| e.name == "brock-ackermann")
        .expect("registered");
    let seed = 7u64;
    let opts = RunOptions {
        max_steps: entry.max_steps,
        seed,
        ..RunOptions::default()
    };

    // 1. the undisturbed run, as a baseline
    let baseline = entry.network(seed).run_report(&mut RoundRobin::new(), opts);
    println!("== Baseline ==\n\n{baseline}");

    // 2. crash process A after 2 of its progress steps; supervise with a
    //    one-for-one restart policy
    let mut net = entry.network(seed);
    net.wrap_crash_at(0, 2);
    let recovered = net.run_supervised(
        &mut RoundRobin::new(),
        opts,
        SupervisorOptions::one_for_one(),
    );
    println!("== Crashed and recovered ==\n\n{recovered}");
    for r in &recovered.recoveries {
        println!("recovery: {r:?}");
    }

    // 3. the recovered run still certifies as a smooth solution
    let conf = check_report(
        &entry.description(),
        &recovered,
        &ConformanceOptions::default(),
    );
    println!("\nconformance after recovery: {conf}");
    assert!(
        conf.is_solution(),
        "recovery must be invisible to Theorem 2"
    );
    assert_eq!(
        recovered.trace, baseline.trace,
        "deterministic replay reproduces the baseline history"
    );

    // 4. a seeded chaos storm over the same scenario: random crash points
    //    and link faults, every conviction shrunk to a minimal reproducer
    let scenario = entry.scenario().expect("chaos-checkable");
    let report = chaos::storm(
        &scenario,
        &ChaosOptions {
            trials: 12,
            seed: 0xC4A05,
            ..ChaosOptions::default()
        },
    );
    println!("\n== Chaos storm ==\n\n{report}");
    assert!(report.harness_ok(), "harness invariants must hold");
}
