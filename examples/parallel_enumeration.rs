//! The README's parallel-enumeration walkthrough: classify every
//! communication history of the Section 2.2 discriminated fair merge with
//! the prefix-sharing engine, and double-check it against the seed walker.

use eqp::core::description::Alphabet;
use eqp::core::{enumerate, enumerate_par, Description, EnumOptions};
use eqp::seqfn::paper::{ch, even, odd};
use eqp::trace::Chan;

fn main() {
    let (b, c, d) = (Chan::new(0), Chan::new(1), Chan::new(2));
    let dfm = Description::new("dfm")
        .equation(even(ch(d)), ch(b))
        .equation(odd(ch(d)), ch(c));

    // Every communication history over this alphabet, classified: smooth
    // solutions, dead ends, and the still-live frontier at the depth bound.
    let alpha = Alphabet::new()
        .with_ints(b, 0, 2)
        .with_ints(c, 1, 1)
        .with_ints(d, 0, 2);
    let opts = EnumOptions {
        max_depth: 5,
        max_nodes: 500_000,
    };
    let e = enumerate_par(&dfm, &alpha, opts, 0); // 0 = all available cores
    println!(
        "{} solutions, {} dead ends, {} frontier nodes, {} nodes visited",
        e.solutions.len(),
        e.dead_ends.len(),
        e.frontier.len(),
        e.nodes_visited
    );
    assert!(e.solutions.contains(&eqp::trace::Trace::empty()));

    // The engine is byte-identical to the paper-faithful seed walker.
    let seed = enumerate(&dfm, &alpha, opts);
    assert_eq!(e.solutions, seed.solutions);
    assert_eq!(e.nodes_visited, seed.nodes_visited);
    println!("identical to the sequential Section 3.3 walk ✓");
}
