//! Lossy links, reliably: the faults that convicted the Section 2.2
//! merge in `faulty_network` are masked by wrapping the lossy channel in
//! a reliable (ARQ) link — sequence numbers, cumulative acks,
//! retransmission with exponential backoff, and a receive-side
//! dedup/re-sequencing window make the composite subnetwork the
//! *identity* description, so the same convicting runs certify as
//! smooth solutions. A hopeless link (every frame dropped, tiny retry
//! budget) degrades gracefully instead of hanging: the run ends in a
//! named `ReliabilityExhausted` status and certifies as a `Degraded`
//! smooth prefix. Bounded channels with credit-based backpressure are
//! only a scheduler restriction: the bounded run certifies identically.
//!
//! Run with: `cargo run --example reliable_network`

use eqp::kahn::conformance::{check_report, ConformanceOptions};
use eqp::kahn::faults::{Fault, FaultSchedule, LinkFaultSpec};
use eqp::kahn::reliable::{ArqOptions, ReliableConfig};
use eqp::kahn::{procs, Network, Oracle, RoundRobin, RunOptions};
use eqp::processes::dfm;
use eqp::trace::Value;

/// The same merge topology as `faulty_network`, but writing straight to
/// `d`: the fault now lives *under* the channel (as the ARQ medium)
/// rather than as an explicit link process.
fn merge_network(seed: u64) -> Network {
    let mut net = Network::new();
    net.add(procs::Source::new(
        "env-b",
        dfm::B,
        [0, 2, 4].map(Value::Int).to_vec(),
    ));
    net.add(procs::Source::new(
        "env-c",
        dfm::C,
        [1, 3].map(Value::Int).to_vec(),
    ));
    net.add(procs::Merge2::new(
        "merge",
        dfm::B,
        dfm::C,
        dfm::D,
        Oracle::fair(seed, 2),
    ));
    net
}

fn opts(seed: u64) -> RunOptions {
    RunOptions {
        max_steps: 200,
        seed,
        ..RunOptions::default()
    }
}

fn main() {
    let seed = 7u64;
    let desc = dfm::dfm_description();
    println!("== Reliable transport against the description ==\n\n{desc}\n");

    let faults: [(&str, Fault); 3] = [
        ("duplicate (every msg)", Fault::Duplicate { period: 1 }),
        ("drop (every 2nd msg)", Fault::Drop { period: 2 }),
        ("reorder (window 3)", Fault::Reorder { window: 3, seed }),
    ];

    // every fault that convicted the bare link is masked by ARQ
    for (label, fault) in faults {
        println!("--- lossy medium: {label}, ARQ-protected ---");
        let schedule = FaultSchedule {
            crashes: vec![],
            links: vec![LinkFaultSpec {
                chan: dfm::D,
                fault,
            }],
        };
        let cfg = ReliableConfig::new(vec![dfm::D]);
        let mut net = merge_network(seed);
        let report = net.run_report_reliable(&mut RoundRobin::new(), opts(seed), &schedule, &cfg);
        let on_d: Vec<i64> = report
            .trace
            .seq_on(dfm::D)
            .take(16)
            .iter()
            .map(|v| v.as_int().unwrap())
            .collect();
        println!("delivered on d: {on_d:?}");
        let conf = check_report(&desc, &report, &ConformanceOptions::default());
        println!("{conf}\n");
    }

    // a hopeless link degrades gracefully: named status, certified prefix
    println!("--- lossy medium: drop (every msg), impatient retry budget ---");
    let schedule = FaultSchedule {
        crashes: vec![],
        links: vec![LinkFaultSpec {
            chan: dfm::D,
            fault: Fault::Drop { period: 1 },
        }],
    };
    let cfg = ReliableConfig::new(vec![dfm::D]).arq(ArqOptions::impatient());
    let mut net = merge_network(seed);
    let report = net.run_report_reliable(&mut RoundRobin::new(), opts(seed), &schedule, &cfg);
    println!("run ended: {}", report.status);
    let conf = check_report(&desc, &report, &ConformanceOptions::default());
    println!("{conf}\n");

    // backpressure is only a scheduler restriction: bounding every
    // consumed channel to one message changes nothing the theory sees
    println!("--- bounded channels: capacity 1, credit-based backpressure ---");
    let unbounded = merge_network(seed).run_report(&mut RoundRobin::new(), opts(seed));
    let bounded =
        merge_network(seed).run_report(&mut RoundRobin::new(), opts(seed).with_capacity(1));
    for c in &bounded.channels {
        if let Some(cap) = c.capacity {
            println!(
                "{}: capacity {cap}, high-water {}, blocked sends {}",
                c.chan, c.high_water, c.blocked_sends
            );
        }
    }
    // a restricted scheduler may interleave differently, but no channel
    // sees a different history — Kahn's point, operationally
    for c in [dfm::B, dfm::C, dfm::D] {
        assert_eq!(bounded.trace.seq_on(c), unbounded.trace.seq_on(c));
        println!("history on {c} unchanged by the bound");
    }
    let conf = check_report(&desc, &bounded, &ConformanceOptions::default());
    println!("{conf}\n");

    println!("Retransmission plus dedup makes the wrapped link the identity: the");
    println!("convicting faults of `faulty_network` are masked, exhaustion has a");
    println!("named degraded outcome instead of a hang, and bounded queues restrict");
    println!("the scheduler without changing any certified history.");
}
