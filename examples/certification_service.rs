//! Serving certifications: an in-process `eqpd` daemon, a client
//! session, and the full lifecycle — admission, backpressure, a
//! deadline-cut verdict, checkpoint-evict-resume, and a one-shot trace
//! check over the wire.
//!
//! Run with: `cargo run --example certification_service`

use eqpd::json::{obj, s, Json};
use eqpd::{AdmissionConfig, Client, ServerConfig};

fn main() {
    println!("== eqpd: certification as a service ==\n");

    let dir = std::env::temp_dir().join(format!("eqpd-example-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let handle = eqpd::start(ServerConfig {
        journal_dir: dir.clone(),
        workers: 2,
        chunk_steps: 32, // tiny chunks: sessions park and resume often
        max_resident: 1, // residency budget of one: parked sessions evict
        admission: AdmissionConfig {
            max_in_flight: 4,
            max_per_tenant: 2,
            retry_after_ms: 100,
        },
        // Workers start paused so the admission story below is
        // deterministic: nothing completes (and frees quota) until the
        // backlog is released.
        start_paused: true,
        ..Default::default()
    })
    .expect("daemon starts");
    let addr = format!("127.0.0.1:{}", handle.port);
    println!("daemon listening on {addr}, journal at {}\n", dir.display());

    let mut client = Client::connect(&addr).expect("connects");

    // --- Submit two zoo workloads as one tenant ----------------------
    let spec = |workload: &str, seed: u64| {
        obj([
            ("workload", s(workload)),
            ("seed", Json::UInt(seed)),
            (
                "sched",
                obj([("kind", s("random")), ("seed", Json::UInt(seed))]),
            ),
        ])
    };
    let a = client
        .submit("alice", spec("fair-merge", 7))
        .expect("io")
        .expect("admitted");
    let b = client
        .submit("alice", spec("sec23-merge", 8))
        .expect("io")
        .expect("admitted");
    println!("alice submitted fair-merge -> session {a}");
    println!("alice submitted sec23-merge -> session {b}");

    // --- The third submission hits alice's quota ---------------------
    match client.submit("alice", spec("ticks", 9)).expect("io") {
        Err(e) => println!("alice's third submit: rejected ({})\n", e.message),
        Ok(id) => println!("unexpected admission: {id}\n"),
    }

    // --- A runaway workload is cut by its deadline -------------------
    let c = client
        .submit(
            "bob",
            obj([
                ("workload", s("ticks")), // never quiesces on its own
                ("seed", Json::UInt(10)),
                ("deadline_ms", Json::UInt(0)),
            ]),
        )
        .expect("io")
        .expect("admitted");
    println!("bob submitted ticks with a 0ms deadline -> session {c}");

    // --- Release the backlog; verdicts stream back as events ---------
    client
        .call("pause", obj([("paused", Json::Bool(false))]))
        .expect("io")
        .expect("released");
    let mut pending = vec![a, b, c];
    while !pending.is_empty() {
        let ev = client.next_event().expect("event stream");
        if ev.get("event").and_then(Json::as_str) != Some("verdict") {
            continue;
        }
        let id = ev.get("session").and_then(Json::as_u64).unwrap_or(0);
        pending.retain(|&p| p != id);
        println!(
            "  verdict for session {id}: {} (conformant: {}, status: {})",
            ev.get("verdict").and_then(Json::as_str).unwrap_or("?"),
            ev.get("conformant")
                .and_then(Json::as_bool)
                .unwrap_or(false),
            ev.get("status").and_then(Json::as_str).unwrap_or("?"),
        );
    }

    // --- One-shot check: certify a textual trace ---------------------
    let ok = client
        .call(
            "check",
            obj([
                ("workload", s("ticks")),
                ("events", Json::Arr(vec![s("40:T"), s("40:T"), s("40:T")])),
                ("quiescent", Json::Bool(false)),
            ]),
        )
        .expect("io")
        .expect("check runs");
    println!(
        "\none-shot check of \"40:T 40:T 40:T\" against ticks: conformant = {}",
        ok.get("conformant")
            .and_then(Json::as_bool)
            .unwrap_or(false)
    );

    // --- The daemon accounted for everything -------------------------
    let stats = handle.stats();
    println!(
        "\ndaemon stats: admitted {}, completed {}, evicted {}, resumed {}, quota rejections {}",
        stats.admitted, stats.completed, stats.evicted, stats.resumed, stats.rejected_quota
    );
    handle.stop();
    let _ = std::fs::remove_dir_all(&dir);
}
