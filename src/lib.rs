//! **eqp** — Equational Reasoning About Nondeterministic Processes.
//!
//! A Rust implementation of Jayadev Misra's PODC 1989 theory: a
//! nondeterministic message-communicating process is characterized by a
//! **description** — an ordered pair of continuous functions `f ⟸ g` —
//! and its behaviours are the **smooth solutions** of that description:
//! solutions of `f(t) = g(t)` whose every one-step prefix extension also
//! satisfies the causality constraint `f(v) ⊑ g(u)`. Smooth solutions
//! generalize Kahn's least fixpoints (deterministic networks fall out as
//! the `id ⟸ h` special case) and resolve the Brock–Ackermann anomaly.
//!
//! # Crate map
//!
//! * [`cpo`] — order theory: cpos, chains, continuous functions, Kleene
//!   fixpoints.
//! * [`trace`] — channels, messages, finite and eventually periodic
//!   (lasso) traces, projection, prefix order.
//! * [`seqfn`] — the combinator algebra of continuous trace-to-sequence
//!   functions (`even`, `odd`, affine maps, `AND`, oracle selection, …).
//! * [`core`] — descriptions, the smooth-solution predicate, solution
//!   enumeration, and the paper's theorems (composition, fixpoint,
//!   variable elimination, induction).
//! * [`kahn`] — the operational side: a Kahn-style dataflow simulator
//!   with pluggable schedulers and quiescence detection.
//! * [`processes`] — the paper's process zoo, each example with both its
//!   description and an operational implementation.
//!
//! # Quickstart
//!
//! ```
//! use eqp::core::{smooth::is_smooth, Description};
//! use eqp::seqfn::paper::{ch, even, odd};
//! use eqp::trace::{Chan, Event, Trace};
//!
//! // The discriminated fair merge of the paper's Section 2.2:
//! //   even(d) ⟸ b ,  odd(d) ⟸ c
//! let (b, c, d) = (Chan::new(0), Chan::new(1), Chan::new(2));
//! let dfm = Description::new("dfm")
//!     .equation(even(ch(d)), ch(b))
//!     .equation(odd(ch(d)), ch(c));
//!
//! // Quiescent histories are smooth solutions…
//! let quiet = Trace::finite(vec![Event::int(b, 0), Event::int(d, 0)]);
//! assert!(is_smooth(&dfm, &quiet));
//! // …histories still owing output are not.
//! let owing = Trace::finite(vec![Event::int(b, 0)]);
//! assert!(!is_smooth(&dfm, &owing));
//! ```
//!
//! See `examples/` for runnable walkthroughs (quickstart, the
//! Brock–Ackermann anomaly, the Section 2.3 merge network, the fair-merge
//! pipeline) and `EXPERIMENTS.md` for the paper-versus-measured record.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use eqp_core as core;
pub use eqp_cpo as cpo;
pub use eqp_kahn as kahn;
pub use eqp_processes as processes;
pub use eqp_seqfn as seqfn;
pub use eqp_trace as trace;
